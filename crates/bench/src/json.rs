//! Minimal JSON value type and renderer for the machine-readable benchmark
//! artifacts (`BENCH_synchronizer.json`).
//!
//! The workspace builds without external crates, so this is a small hand-rolled
//! emitter instead of serde. It only needs to *write* JSON; nothing in the
//! workspace parses it back.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, rendered without a decimal point.
    Int(u64),
    /// A float; non-finite values are rendered as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(&'static str, Json)>),
}

impl Json {
    /// Renders the value as pretty-printed JSON (two-space indent).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = Json::Obj(vec![
            ("name", Json::Str("grid/256".into())),
            ("n", Json::Int(256)),
            ("ratio", Json::Num(1.5)),
            ("tags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("empty", Json::Obj(vec![])),
        ]);
        let text = v.render();
        assert!(text.contains("\"name\": \"grid/256\""));
        assert!(text.contains("\"n\": 256"));
        assert!(text.contains("\"ratio\": 1.5"));
        assert!(text.contains("true"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings_and_nulls_non_finite_numbers() {
        assert_eq!(Json::Str("a\"b\\c\n".into()).render(), "\"a\\\"b\\\\c\\n\"\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }
}
