//! The one table-rendering path shared by the `exp_*` binaries, the examples and
//! the experiment tests.
//!
//! Every experiment produces [`Row`]s; [`print_table`] (or [`render_table`], for
//! callers that capture output) turns them into the aligned text tables recorded in
//! DESIGN.md §4. Keeping a single renderer means every consumer formats rows
//! identically — there is no per-binary row formatting.

/// One row of an experiment table.
#[derive(Clone, Debug)]
pub struct Row {
    /// Label of the parameter point (graph family, size, adversary, synchronizer …).
    pub label: String,
    /// Named measurements, printed in order.
    pub values: Vec<(&'static str, f64)>,
}

impl Row {
    /// Looks up a measurement by name.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.values.iter().find(|(k, _)| *k == name).map(|(_, v)| *v)
    }
}

/// Renders a table of rows with a header derived from the first row.
pub fn render_table(title: &str, rows: &[Row]) -> String {
    let mut out = format!("== {title}\n");
    if let Some(first) = rows.first() {
        let header: Vec<String> = first.values.iter().map(|(k, _)| format!("{k:>12}")).collect();
        out.push_str(&format!("{:<28} {}\n", "workload", header.join(" ")));
    }
    for row in rows {
        let cells: Vec<String> = row.values.iter().map(|(_, v)| format!("{v:>12.2}")).collect();
        out.push_str(&format!("{:<28} {}\n", row.label, cells.join(" ")));
    }
    out.push('\n');
    out
}

/// Prints a table of rows to stdout.
pub fn print_table(title: &str, rows: &[Row]) {
    print!("{}", render_table(title, rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_aligns_header_and_cells() {
        let rows = vec![
            Row { label: "grid/16".into(), values: vec![("n", 16.0), ("msgs", 123.0)] },
            Row { label: "path/8".into(), values: vec![("n", 8.0), ("msgs", 45.5)] },
        ];
        let text = render_table("demo", &rows);
        assert!(text.starts_with("== demo\n"));
        assert!(text.contains("workload"));
        assert!(text.contains("grid/16"));
        assert!(text.contains("45.50"));
        // Title + header + two rows, then a trailing blank separator line.
        assert_eq!(text.trim_end().lines().count(), 4);
        assert!(text.ends_with("\n\n"));
    }

    #[test]
    fn value_lookup_finds_named_measurements() {
        let row = Row { label: "x".into(), values: vec![("a", 1.0), ("b", 2.0)] };
        assert_eq!(row.value("b"), Some(2.0));
        assert_eq!(row.value("missing"), None);
    }
}
