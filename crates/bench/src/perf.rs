//! E9 — engine performance benchmarks with a machine-readable artifact.
//!
//! Unlike E1–E8 (which check the paper's *complexity claims*), this experiment
//! measures the *simulator itself*: wall time and processed events per second for a
//! fixed scenario matrix of graph families × synchronizers × delay adversaries, on
//! a single-source BFS workload. The matrix is fixed so that successive runs (and
//! successive PRs) are comparable; `exp_perf` writes the records to
//! `BENCH_synchronizer.json` (schema documented in DESIGN.md §4) next to the usual
//! text table.
//!
//! Setup work that happens once per configuration — the synchronous ground-truth
//! run, cover construction for the deterministic synchronizer — is timed separately
//! (`setup_ms`, a first-class per-scenario measurement since schema v2) from the
//! simulation proper (`wall_seconds`), so `events_per_sec` tracks the hot path of
//! the event-driven engines and `exp_perf --compare` can gate setup-cost
//! regressions under the same thresholds as throughput regressions.
//!
//! Since schema v3 each scenario records `threads` — the shard count of the
//! engine that ran it (1 = serial timing wheel, > 1 = `SchedulerKind::Sharded`).
//! The det-only 65536-node tiers carry explicit `/s2` and `/s4` shard-variant
//! scenarios so the committed artifact records thread scaling, and
//! `PerfOptions::shards` (the `--shards` flag) reruns the whole matrix sharded
//! under unchanged ids for schedule-identity comparisons.
//!
//! Schema v4 adds `workers` — the worker-pool size the sharded engine's shards
//! round-robin over (`PerfOptions::workers`, the `--workers` flag; decoupled
//! from the shard count since the engine grew its persistent pool) — and
//! `batched_ticks`, the extra ticks processed inside batched causality-free
//! windows (0 for serial runs and whenever batching is inapplicable). Both are
//! engine knobs/internals: `events` never depends on either.
//!
//! Schema v5 adds `dropped_events` and `fault_transitions` — the fault-injection
//! counters every engine reports (DESIGN.md §9). The fixed perf matrix runs
//! fault-free, so both are 0 in committed artifacts; they are recorded anyway so
//! a future faulted scenario tier needs no schema bump and so `--compare` can
//! flag a matrix that silently started dropping deliveries.
//!
//! Schema v6 adds the event-arena counters (DESIGN.md §10): `peak_live_handles`
//! (the high-water mark of simultaneously in-flight payload handles, summed
//! over shards), `arena_bytes` (payload-slab capacity at the end of the run)
//! and `max_batch` (the largest one-tick due batch the engine drained). All
//! three are engine internals like `batched_ticks`: `events` never depends on
//! them, and the lock-step `direct` scenarios record 0.

use crate::json::Json;
use crate::table::Row;
use ds_algos::bfs::BfsAlgorithm;
use ds_graph::{Graph, NodeId};
use ds_netsim::delay::DelayModel;
use ds_netsim::metrics::MessageClass;
use ds_sync::session::{Session, SyncKind};
use ds_sync::synchronizer::SynchronizerConfig;
use std::time::Instant;

/// Options for the performance sweep.
#[derive(Clone, Debug)]
pub struct PerfOptions {
    /// Smoke mode: only the smallest size per family (used by CI).
    pub smoke: bool,
    /// Only run scenarios whose id contains this substring.
    pub filter: Option<String>,
    /// Run every asynchronous scenario on the sharded engine with this many
    /// shards (`SchedulerKind::Sharded`); 1 means the serial timing wheel.
    /// Scenario ids are unchanged, so `--compare` against a serial baseline
    /// doubles as a schedule-identity check — the sharded engine is
    /// bit-identical by contract, so event counts must match exactly (the CI
    /// perf-smoke job runs the 128×128 det scenario this way with
    /// `--shards 4 --workers 2`).
    pub shards: usize,
    /// Worker-pool size for sharded scenarios (`--workers`); `0` (the default)
    /// means one worker per shard. Clamped by the engine to `1..=shards` and,
    /// under its default thread policy, to the host's available parallelism.
    /// Schedules are bit-identical for every value.
    pub workers: usize,
}

impl Default for PerfOptions {
    fn default() -> Self {
        PerfOptions { smoke: false, filter: None, shards: 1, workers: 0 }
    }
}

/// One measured scenario.
#[derive(Clone, Debug)]
pub struct PerfRecord {
    /// Scenario id, e.g. `grid/4096/det/jitter`.
    pub scenario: String,
    /// Graph family (`grid`, `torus`, `cycle`, `random-regular`).
    pub family: String,
    /// Node count.
    pub n: usize,
    /// Undirected edge count.
    pub m: usize,
    /// Synchronizer label (`direct`, `alpha`, `beta`, `det`).
    pub synchronizer: String,
    /// Adversary label (`none` for the lock-step run).
    pub adversary: String,
    /// Shard count of the engine that ran the scenario (1 = the serial timing
    /// wheel; > 1 = `SchedulerKind::Sharded`, which spawns one worker thread
    /// per shard on multi-core hosts). Schedules are bit-identical across
    /// values, so `events` never depends on this — only the wall-clock fields
    /// do. New in schema v3.
    pub threads: usize,
    /// Worker-pool size requested for the sharded engine (1 for serial runs;
    /// for sharded runs, the `--workers` request with `0` resolved to one per
    /// shard). A knob, not a measurement: the engine may still run the pool
    /// smaller — or not at all on single-core hosts — and `events` never
    /// depends on it. New in schema v4.
    pub workers: usize,
    /// Pulse bound `T(A)` handed to the synchronizer.
    pub pulse_bound: u64,
    /// Synchronous ground-truth rounds `T(A)`.
    pub sync_rounds: u64,
    /// Synchronous ground-truth messages `M(A)`.
    pub sync_messages: u64,
    /// One-off setup time (cover construction etc.), milliseconds.
    pub setup_ms: f64,
    /// Simulation wall time, seconds.
    pub wall_seconds: f64,
    /// Delivery events processed (messages for the lock-step engine).
    pub events: u64,
    /// Extra ticks processed inside batched causality-free windows (0 for
    /// serial runs and whenever the delay model rules batching out). An engine
    /// internal like `threads`; `events` never depends on it. New in schema v4.
    pub batched_ticks: u64,
    /// Deliveries suppressed by the fault adversary (0: the perf matrix runs
    /// fault-free, and a non-zero value here means the scenario silently
    /// degraded). New in schema v5.
    pub dropped_events: u64,
    /// Fault-plan transitions applied during the run (0 for the fault-free
    /// matrix). New in schema v5.
    pub fault_transitions: u64,
    /// Peak number of simultaneously live payload handles in the engine's
    /// event arena(s) (summed over shards; 0 for the lock-step engine). An
    /// engine internal: `events` never depends on it. New in schema v6.
    pub peak_live_handles: u64,
    /// Bytes held by the payload-arena slabs at the end of the run (summed
    /// over shards; 0 for the lock-step engine). New in schema v6.
    pub arena_bytes: u64,
    /// Largest one-tick due batch the engine drained (0 for the lock-step
    /// engine). New in schema v6.
    pub max_batch: u64,
    /// Events per wall-clock second — the engine throughput number.
    pub events_per_sec: f64,
    /// Total messages sent (algorithm + control, acks excluded).
    pub messages: u64,
    /// Algorithm-class messages.
    pub algorithm_messages: u64,
    /// Control-class messages.
    pub control_messages: u64,
    /// Link-level acknowledgments.
    pub acks: u64,
    /// Normalized time-to-output divided by `T(A)`.
    pub time_overhead: f64,
    /// Total messages divided by `M(A)`.
    pub message_overhead: f64,
}

impl PerfRecord {
    /// The record as a JSON object (one element of the `scenarios` array).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("scenario", Json::Str(self.scenario.clone())),
            ("family", Json::Str(self.family.clone())),
            ("n", Json::Int(self.n as u64)),
            ("m", Json::Int(self.m as u64)),
            ("synchronizer", Json::Str(self.synchronizer.clone())),
            ("adversary", Json::Str(self.adversary.clone())),
            ("threads", Json::Int(self.threads as u64)),
            ("workers", Json::Int(self.workers as u64)),
            ("pulse_bound", Json::Int(self.pulse_bound)),
            ("sync_rounds", Json::Int(self.sync_rounds)),
            ("sync_messages", Json::Int(self.sync_messages)),
            ("setup_ms", Json::Num(self.setup_ms)),
            ("wall_seconds", Json::Num(self.wall_seconds)),
            ("events", Json::Int(self.events)),
            ("batched_ticks", Json::Int(self.batched_ticks)),
            ("dropped_events", Json::Int(self.dropped_events)),
            ("fault_transitions", Json::Int(self.fault_transitions)),
            ("peak_live_handles", Json::Int(self.peak_live_handles)),
            ("arena_bytes", Json::Int(self.arena_bytes)),
            ("max_batch", Json::Int(self.max_batch)),
            ("events_per_sec", Json::Num(self.events_per_sec)),
            ("messages", Json::Int(self.messages)),
            ("algorithm_messages", Json::Int(self.algorithm_messages)),
            ("control_messages", Json::Int(self.control_messages)),
            ("acks", Json::Int(self.acks)),
            ("time_overhead", Json::Num(self.time_overhead)),
            ("message_overhead", Json::Num(self.message_overhead)),
        ])
    }

    /// The record as a text-table row (same renderer as every other experiment).
    pub fn to_row(&self) -> Row {
        Row {
            label: self.scenario.clone(),
            values: vec![
                ("n", self.n as f64),
                ("thr", self.threads as f64),
                ("wrk", self.workers as f64),
                ("T(A)", self.sync_rounds as f64),
                ("setup_ms", self.setup_ms),
                ("wall_s", self.wall_seconds),
                ("events", self.events as f64),
                ("ev/s", self.events_per_sec),
                ("msgs", self.messages as f64),
                ("timeOvh", self.time_overhead),
                ("msgOvh", self.message_overhead),
            ],
        }
    }
}

/// Renders the full artifact written to `BENCH_synchronizer.json`.
pub fn render_artifact(mode: &str, records: &[PerfRecord]) -> String {
    Json::Obj(vec![
        ("schema", Json::Str("det-synchronizer-bench/v6".into())),
        ("suite", Json::Str("synchronizer".into())),
        ("mode", Json::Str(mode.into())),
        ("workload", Json::Str("single-source BFS from node 0".into())),
        ("scenarios", Json::Arr(records.iter().map(PerfRecord::to_json).collect())),
    ])
    .render()
}

/// One graph tier of the fixed scenario matrix.
struct PerfGraph {
    family: String,
    graph_id: String,
    graph: Graph,
    /// Restrict this tier to the `direct` + `det` scenarios. The 65536-node tiers
    /// exist to track the deterministic synchronizer (whose setup cost the
    /// dense-id cover pipeline just made affordable); α/β at that size would
    /// multiply the matrix runtime without measuring anything new.
    det_only: bool,
}

/// The fixed scenario graphs per size tier. The 16384-node tiers (128×128 grid
/// and torus, 16384-node random-regular) exist to show that the timing-wheel
/// engine's throughput holds up beyond the historical 4096-node ceiling; the
/// 65536-node det tiers (256×256 grid and torus) were unlocked by the dense-id
/// cover pipeline, which took `SynchronizerConfig::build` out of the setup
/// budget; the torus family is the boundary-free counterpart of the grid.
fn perf_graphs(smoke: bool) -> Vec<PerfGraph> {
    let tier = |family: &str, graph_id: String, graph: Graph, det_only: bool| PerfGraph {
        family: family.into(),
        graph_id,
        graph,
        det_only,
    };
    let mut out: Vec<PerfGraph> = Vec::new();
    let grid_sides: &[usize] = if smoke { &[16] } else { &[16, 32, 64, 128, 256] };
    for &side in grid_sides {
        let n = side * side;
        out.push(tier("grid", format!("grid/{n}"), Graph::grid(side, side), side >= 256));
    }
    // The full torus tiers include the smoke side so the smoke matrix is a strict
    // subset of the full one — the CI `--compare` event-count check then covers
    // every family, torus included.
    let torus_sides: &[usize] = if smoke { &[16] } else { &[16, 32, 64, 128, 256] };
    for &side in torus_sides {
        let n = side * side;
        out.push(tier("torus", format!("torus/{n}"), Graph::torus(side, side), side >= 256));
    }
    // The cycle family stops at 1024 nodes: its diameter (and hence `T(A)`) grows
    // linearly, so larger cycles measure pulse-count scaling, not engine throughput.
    let cycle_sizes: &[usize] = if smoke { &[256] } else { &[256, 1024] };
    for &n in cycle_sizes {
        out.push(tier("cycle", format!("cycle/{n}"), Graph::cycle(n), false));
    }
    let rr_sizes: &[usize] = if smoke { &[256] } else { &[256, 1024, 4096, 16384] };
    for &n in rr_sizes {
        out.push(tier(
            "random-regular",
            format!("random-regular/{n}"),
            Graph::random_regular(n, 4, n as u64),
            false,
        ));
    }
    out
}

fn adversaries() -> Vec<(&'static str, DelayModel)> {
    vec![("uniform", DelayModel::uniform()), ("jitter", DelayModel::jitter(7))]
}

fn matches(filter: &Option<String>, id: &str) -> bool {
    filter.as_ref().is_none_or(|f| id.contains(f))
}

/// One planned scenario: `(kind, adversary, delay, shards, id)`.
type Planned = (SyncKind, &'static str, DelayModel, usize, String);

/// Plans one graph tier's asynchronous scenarios. `--shards` reruns the whole
/// matrix on the sharded engine with unchanged ids; the default serial matrix
/// additionally carries explicit `/s{K}` shard variants of the det scenarios on
/// the det-only (65536-node) tiers — the tier the sharded engine exists for —
/// so the committed artifact records the thread scaling.
fn plan_tier(graph_id: &str, kinds: Vec<SyncKind>, opts: &PerfOptions) -> Vec<Planned> {
    let det_only = kinds.len() == 1 && matches!(kinds[0], SyncKind::DetAuto);
    let mut out = Vec::new();
    for kind in kinds {
        for (adv_label, delay) in adversaries() {
            let id = format!("{graph_id}/{}/{adv_label}", kind.label());
            if matches(&opts.filter, &id) {
                out.push((kind.clone(), adv_label, delay.clone(), opts.shards, id));
            }
            if opts.shards == 1 && det_only && matches!(kind, SyncKind::DetAuto) {
                for shards in [2usize, 4] {
                    let id = format!("{graph_id}/{}/{adv_label}/s{shards}", kind.label());
                    if matches(&opts.filter, &id) {
                        out.push((kind.clone(), adv_label, delay.clone(), shards, id));
                    }
                }
            }
        }
    }
    out
}

/// E9 — runs the performance matrix and returns one record per scenario.
///
/// # Panics
///
/// Panics if any simulation fails or any synchronized run diverges from the
/// lock-step ground truth (throughput numbers for wrong executions are worthless).
pub fn experiment_perf(opts: &PerfOptions) -> Vec<PerfRecord> {
    // The 65536-node det tiers process more deliveries than the default event
    // budget allows; the matrix is fixed, so a generous explicit budget still
    // catches genuine message blowups.
    let limits = ds_netsim::SimLimits { max_events: 200_000_000, max_rounds: 1_000_000 };
    let mut records = Vec::new();
    for PerfGraph { family, graph_id, graph, det_only } in perf_graphs(opts.smoke) {
        let kinds: Vec<SyncKind> = if det_only {
            vec![SyncKind::DetAuto]
        } else {
            vec![
                SyncKind::Alpha,
                SyncKind::Beta { root: NodeId(0) },
                SyncKind::DetAuto, // placeholder; replaced by Det(cfg) below
            ]
        };
        let wanted = plan_tier(&graph_id, kinds, opts);
        let direct_id = format!("{graph_id}/direct/none");
        let direct_wanted = matches(&opts.filter, &direct_id);
        if wanted.is_empty() && !direct_wanted {
            continue;
        }

        // Ground truth (synchronous lock-step run): defines T(A), M(A) and the
        // reference outputs, and doubles as the `direct` engine measurement.
        let start = Instant::now();
        let direct = Session::on(&graph)
            .synchronizer(SyncKind::Direct)
            .run(|v| BfsAlgorithm::new(&graph, v, &[NodeId(0)]))
            .expect("ground truth run");
        let direct_wall = start.elapsed().as_secs_f64();
        let t = direct.metrics.time_to_quiescence.max(1.0) as u64;
        let m_a = direct.metrics.total_messages();
        if direct_wanted {
            records.push(PerfRecord {
                scenario: direct_id,
                family: family.clone(),
                n: graph.node_count(),
                m: graph.edge_count(),
                synchronizer: "direct".into(),
                adversary: "none".into(),
                threads: 1,
                workers: 1,
                pulse_bound: t,
                sync_rounds: t,
                sync_messages: m_a,
                setup_ms: 0.0,
                wall_seconds: direct_wall,
                events: direct.metrics.events,
                batched_ticks: 0,
                dropped_events: 0,
                fault_transitions: 0,
                peak_live_handles: 0,
                arena_bytes: 0,
                max_batch: 0,
                events_per_sec: direct.metrics.events as f64 / direct_wall.max(1e-9),
                messages: m_a,
                algorithm_messages: direct.metrics.class_messages(MessageClass::Algorithm),
                control_messages: direct.metrics.class_messages(MessageClass::Control),
                acks: direct.metrics.acks,
                time_overhead: 1.0,
                message_overhead: 1.0,
            });
        }

        // The deterministic synchronizer's cover is built once per graph and shared
        // by its scenarios; the build cost is reported as `setup_ms`.
        let mut det_cfg: Option<(std::sync::Arc<SynchronizerConfig>, f64)> = None;
        for (kind, adv_label, delay, shards, scenario) in wanted {
            let (kind, setup_ms) = match kind {
                SyncKind::DetAuto => {
                    if det_cfg.is_none() {
                        let start = Instant::now();
                        let cfg = SynchronizerConfig::build(&graph, t);
                        det_cfg = Some((cfg, start.elapsed().as_secs_f64() * 1e3));
                    }
                    let (cfg, ms) = det_cfg.clone().expect("just built");
                    (SyncKind::Det(cfg), ms)
                }
                other => (other, 0.0),
            };
            // The recorded `workers` is the resolved request: 0 means one per
            // shard, like `ShardedOptions::workers`.
            let workers = if shards > 1 {
                if opts.workers == 0 {
                    shards
                } else {
                    opts.workers.min(shards)
                }
            } else {
                1
            };
            let scheduler = if shards > 1 {
                ds_netsim::SchedulerKind::Sharded { shards, workers: opts.workers }
            } else {
                ds_netsim::SchedulerKind::TimingWheel
            };
            let start = Instant::now();
            let run = Session::on(&graph)
                .delay(delay)
                .synchronizer(kind.clone())
                .scheduler(scheduler)
                .pulse_bound(t)
                .limits(limits)
                .run(|v| BfsAlgorithm::new(&graph, v, &[NodeId(0)]))
                .unwrap_or_else(|e| panic!("{scenario}: {e}"));
            let wall = start.elapsed().as_secs_f64();
            assert_eq!(run.outputs, direct.outputs, "{scenario} diverged from ground truth");
            let metrics = run.metrics;
            records.push(PerfRecord {
                scenario,
                family: family.clone(),
                n: graph.node_count(),
                m: graph.edge_count(),
                synchronizer: kind.label().into(),
                adversary: adv_label.into(),
                threads: shards,
                workers,
                pulse_bound: t,
                sync_rounds: t,
                sync_messages: m_a,
                setup_ms,
                wall_seconds: wall,
                events: metrics.events,
                batched_ticks: run.batched_ticks,
                dropped_events: run.dropped_events,
                fault_transitions: run.fault_transitions,
                peak_live_handles: run.peak_live_handles,
                arena_bytes: run.arena_bytes,
                max_batch: run.max_batch,
                events_per_sec: metrics.events as f64 / wall.max(1e-9),
                messages: metrics.total_messages(),
                algorithm_messages: metrics.class_messages(MessageClass::Algorithm),
                control_messages: metrics.class_messages(MessageClass::Control),
                acks: metrics.acks,
                time_overhead: metrics.time_to_output.unwrap_or(f64::NAN) / t as f64,
                message_overhead: metrics.total_messages() as f64 / m_a.max(1) as f64,
            });
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_covers_every_family_kind_and_adversary() {
        let records = experiment_perf(&PerfOptions { smoke: true, ..PerfOptions::default() });
        // 4 families × (1 direct + 3 kinds × 2 adversaries) = 28 scenarios.
        assert_eq!(records.len(), 28);
        for family in ["grid", "torus", "cycle", "random-regular"] {
            for kind in ["direct", "alpha", "beta", "det"] {
                assert!(
                    records.iter().any(|r| r.family == family && r.synchronizer == kind),
                    "missing {family}/{kind}"
                );
            }
        }
        for r in &records {
            assert!(r.events > 0, "{}: no events", r.scenario);
            assert!(r.events_per_sec > 0.0, "{}", r.scenario);
            assert!(r.message_overhead >= 1.0, "{}", r.scenario);
        }
    }

    #[test]
    fn filter_restricts_the_matrix() {
        let records = experiment_perf(&PerfOptions {
            smoke: true,
            filter: Some("grid/256/det".into()),
            ..PerfOptions::default()
        });
        assert_eq!(
            records.len(),
            2,
            "{:?}",
            records.iter().map(|r| &r.scenario).collect::<Vec<_>>()
        );
        assert!(records.iter().all(|r| r.scenario.starts_with("grid/256/det/")));
    }

    #[test]
    fn artifact_is_valid_schema_v6() {
        let records = experiment_perf(&PerfOptions {
            smoke: true,
            filter: Some("cycle/256/beta/uniform".into()),
            ..PerfOptions::default()
        });
        let text = render_artifact("smoke", &records);
        assert!(text.contains("\"schema\": \"det-synchronizer-bench/v6\""));
        assert!(text.contains("\"mode\": \"smoke\""));
        assert!(text.contains("\"scenario\": \"cycle/256/beta/uniform\""));
        assert!(text.contains("\"events_per_sec\""));
        assert!(text.contains("\"setup_ms\""));
        assert!(text.contains("\"threads\": 1"));
        assert!(text.contains("\"workers\": 1"));
        assert!(text.contains("\"batched_ticks\""));
        assert!(text.contains("\"dropped_events\": 0"));
        assert!(text.contains("\"fault_transitions\": 0"));
        assert!(text.contains("\"peak_live_handles\""));
        assert!(text.contains("\"arena_bytes\""));
        assert!(text.contains("\"max_batch\""));
        // The asynchronous beta scenario runs through the event arena: the new
        // counters must be live measurements, not zeros.
        let beta = records.iter().find(|r| r.synchronizer == "beta").expect("beta record");
        assert!(beta.peak_live_handles > 0, "arena high-water mark not recorded");
        assert!(beta.arena_bytes > 0, "payload-slab bytes not recorded");
        assert!(beta.max_batch > 0, "max due-batch size not recorded");
    }

    #[test]
    fn shards_option_runs_the_matrix_on_the_sharded_engine() {
        // Same scenario ids, same event counts (the engines are bit-identical),
        // `threads` recording the shard count — the contract the CI
        // `--shards 4 --compare` step relies on.
        let serial = experiment_perf(&PerfOptions {
            smoke: true,
            filter: Some("grid/256/det".into()),
            shards: 1,
            ..PerfOptions::default()
        });
        let sharded = experiment_perf(&PerfOptions {
            smoke: true,
            filter: Some("grid/256/det".into()),
            shards: 4,
            ..PerfOptions::default()
        });
        assert_eq!(serial.len(), sharded.len());
        for (a, b) in serial.iter().zip(&sharded) {
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.events, b.events, "{}: schedule changed under sharding", a.scenario);
            assert_eq!(a.threads, 1);
            assert_eq!(b.threads, 4);
            assert_eq!(a.workers, 1);
            assert_eq!(b.workers, 4, "workers=0 resolves to one per shard");
        }
    }

    #[test]
    fn workers_option_decouples_from_shards_without_changing_events() {
        // `--shards 4 --workers 2`: the schedule (and so `events`) must match
        // the serial run exactly while the record carries both knobs — the
        // contract the CI `--shards 4 --workers 2 --compare` step relies on.
        let serial = experiment_perf(&PerfOptions {
            smoke: true,
            filter: Some("grid/256/det/uniform".into()),
            ..PerfOptions::default()
        });
        let pooled = experiment_perf(&PerfOptions {
            smoke: true,
            filter: Some("grid/256/det/uniform".into()),
            shards: 4,
            workers: 2,
        });
        assert_eq!(serial.len(), 1);
        assert_eq!(pooled.len(), 1);
        assert_eq!(serial[0].events, pooled[0].events, "schedule changed under the pool");
        assert_eq!(pooled[0].threads, 4);
        assert_eq!(pooled[0].workers, 2);
        // Uniform delays put every event on τ-multiples, so no multi-tick
        // window forms and both runs must report zero batched ticks.
        assert_eq!(serial[0].batched_ticks, 0);
        assert_eq!(pooled[0].batched_ticks, 0);
    }

    #[test]
    fn det_only_tiers_plan_shard_variants_serial_runs_only() {
        let ids = |kinds: Vec<SyncKind>, opts: &PerfOptions| -> Vec<String> {
            plan_tier("grid/65536", kinds, opts).into_iter().map(|(.., id)| id).collect()
        };
        // A det-only tier on the default serial matrix carries the /s2 and /s4
        // det variants next to the serial scenarios.
        let planned = ids(vec![SyncKind::DetAuto], &PerfOptions::default());
        for wanted in [
            "grid/65536/det/uniform",
            "grid/65536/det/uniform/s2",
            "grid/65536/det/uniform/s4",
            "grid/65536/det/jitter/s4",
        ] {
            assert!(planned.iter().any(|id| id == wanted), "missing {wanted} in {planned:?}");
        }
        // A `--shards` run keeps ids unchanged (no variants: the whole matrix is
        // already sharded), and mixed-kind tiers never get variants.
        let sharded =
            ids(vec![SyncKind::DetAuto], &PerfOptions { shards: 4, ..PerfOptions::default() });
        assert_eq!(sharded, ["grid/65536/det/uniform", "grid/65536/det/jitter"]);
        let mixed = ids(vec![SyncKind::Alpha, SyncKind::DetAuto], &PerfOptions::default());
        assert!(mixed.iter().all(|id| !id.contains("/s")), "{mixed:?}");
    }

    #[test]
    fn full_matrix_includes_a_det_only_65536_tier() {
        // The 65536-node tiers are det-only: the graph list must say so without
        // running anything (running the full tier is exp_perf's job, not a test's).
        let graphs = perf_graphs(false);
        let big: Vec<_> = graphs.iter().filter(|g| g.graph.node_count() == 65536).collect();
        assert!(!big.is_empty(), "the full matrix must carry a 65536-node tier");
        assert!(big.iter().all(|g| g.det_only));
        assert!(big.iter().any(|g| g.graph_id == "grid/65536"));
        // Smoke tiers never include det-only graphs (they must stay CI-sized).
        assert!(perf_graphs(true).iter().all(|g| !g.det_only));
    }
}
