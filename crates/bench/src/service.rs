//! E11 — simulation-as-a-service throughput and setup amortization.
//!
//! Where E9 measures one engine running one scenario, this experiment measures
//! the *service layer* (`ds-sync::service`): batches of independent simulation
//! requests running concurrently over a [`SessionPool`], sharing a cover cache
//! and a recycled engine-state bank. Two quantities matter:
//!
//! * **requests/sec at N concurrent sessions** — one row per worker count on a
//!   fixed per-tier batch, so the committed artifact records how service
//!   throughput scales with concurrency;
//! * **per-run setup cost, cold vs. cache-hit** — `setup_cold_ms` is one full
//!   `SynchronizerConfig::build`, `setup_warm_ms` the mean cache-hit lookup
//!   (hash + graph-equality verify + `Arc` clone). Their ratio
//!   (`setup_speedup`) is the amortization the cover cache buys; the
//!   experiment asserts it is at least 5× on the 4096-node tiers.
//!
//! Every pooled run is asserted bit-identical to the same request run through
//! a standalone `Session` — outputs, metrics and engine counters (except
//! `arena_bytes`, which recycled capacity may legitimately exceed) — so the
//! throughput numbers are for provably unchanged schedules.
//!
//! The artifact (`BENCH_service.json`) uses the same `det-synchronizer-bench/v6`
//! schema as E9 with `suite: "service"`; `events` is the per-batch total and is
//! deterministic, so `exp_service --compare --events-only` gates schedule
//! identity in CI exactly like `exp_perf`.

use crate::json::Json;
use crate::perf::PerfRecord;
use crate::table::Row;
use ds_algos::bfs::BfsAlgorithm;
use ds_graph::{Graph, NodeId};
use ds_netsim::delay::DelayModel;
use ds_sync::service::{ServiceRequest, SessionPool, SynchronizerParams};
use ds_sync::session::{Session, SyncKind};
use ds_sync::synchronizer::SynchronizerConfig;
use std::time::Instant;

/// Options for the service sweep.
#[derive(Clone, Debug, Default)]
pub struct ServiceOptions {
    /// Smoke mode: small tiers and a short worker sweep (used by CI).
    pub smoke: bool,
    /// Only run scenarios whose id contains this substring.
    pub filter: Option<String>,
}

/// One measured `(tier, worker count)` point.
#[derive(Clone, Debug)]
pub struct ServiceRecord {
    /// Scenario id, e.g. `service/grid/4096/w4`.
    pub scenario: String,
    /// Graph family.
    pub family: String,
    /// Node count.
    pub n: usize,
    /// Undirected edge count.
    pub m: usize,
    /// Worker threads the pool dispatched over (1 = one worker).
    pub workers: usize,
    /// Requests in the batch.
    pub requests: usize,
    /// Pulse bound shared by every request of the batch.
    pub pulse_bound: u64,
    /// One cold `SynchronizerConfig::build`, milliseconds.
    pub setup_cold_ms: f64,
    /// Mean cache-hit lookup, milliseconds.
    pub setup_warm_ms: f64,
    /// `setup_cold_ms / setup_warm_ms` — the per-run setup amortization.
    pub setup_speedup: f64,
    /// Batch wall time, seconds.
    pub wall_seconds: f64,
    /// Requests per wall-clock second — the service throughput number.
    pub requests_per_sec: f64,
    /// Delivery events processed, summed over the batch (deterministic).
    pub events: u64,
    /// Events per wall-clock second across the whole batch.
    pub events_per_sec: f64,
    /// Cover-cache hits during the batch.
    pub cache_hits: u64,
    /// Cover-cache misses (prewarm included).
    pub cache_misses: u64,
    /// Engine slabs checked out of the recycling bank.
    pub slab_checkouts: u64,
    /// Checkouts served by a recycled slab instead of a cold allocation.
    pub slab_reuses: u64,
}

impl ServiceRecord {
    /// The record as a JSON object (one element of the `scenarios` array).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("scenario", Json::Str(self.scenario.clone())),
            ("family", Json::Str(self.family.clone())),
            ("n", Json::Int(self.n as u64)),
            ("m", Json::Int(self.m as u64)),
            ("workers", Json::Int(self.workers as u64)),
            ("requests", Json::Int(self.requests as u64)),
            ("pulse_bound", Json::Int(self.pulse_bound)),
            // `setup_ms` is the warm (steady-state) per-run setup cost: the
            // baseline comparison gates it like E9's cover-build time.
            ("setup_ms", Json::Num(self.setup_warm_ms)),
            ("setup_cold_ms", Json::Num(self.setup_cold_ms)),
            ("setup_warm_ms", Json::Num(self.setup_warm_ms)),
            ("setup_speedup", Json::Num(self.setup_speedup)),
            ("wall_seconds", Json::Num(self.wall_seconds)),
            ("requests_per_sec", Json::Num(self.requests_per_sec)),
            ("events", Json::Int(self.events)),
            ("events_per_sec", Json::Num(self.events_per_sec)),
            ("cache_hits", Json::Int(self.cache_hits)),
            ("cache_misses", Json::Int(self.cache_misses)),
            ("slab_checkouts", Json::Int(self.slab_checkouts)),
            ("slab_reuses", Json::Int(self.slab_reuses)),
        ])
    }

    /// The record as a text-table row.
    pub fn to_row(&self) -> Row {
        Row {
            label: self.scenario.clone(),
            values: vec![
                ("n", self.n as f64),
                ("wrk", self.workers as f64),
                ("reqs", self.requests as f64),
                ("cold_ms", self.setup_cold_ms),
                ("warm_ms", self.setup_warm_ms),
                ("speedup", self.setup_speedup),
                ("wall_s", self.wall_seconds),
                ("req/s", self.requests_per_sec),
                ("events", self.events as f64),
                ("ev/s", self.events_per_sec),
                ("reuse", self.slab_reuses as f64),
            ],
        }
    }

    /// The record as a [`PerfRecord`] carrying the fields the baseline
    /// comparison reads (`scenario`, `events`, `events_per_sec`, `setup_ms`),
    /// so `exp_service --compare` reuses the E9 comparison pipeline.
    pub fn to_perf_record(&self) -> PerfRecord {
        PerfRecord {
            scenario: self.scenario.clone(),
            family: self.family.clone(),
            n: self.n,
            m: self.m,
            synchronizer: "det".into(),
            adversary: "jitter".into(),
            threads: self.workers,
            workers: self.workers,
            pulse_bound: self.pulse_bound,
            sync_rounds: self.pulse_bound,
            sync_messages: 0,
            setup_ms: self.setup_warm_ms,
            wall_seconds: self.wall_seconds,
            events: self.events,
            batched_ticks: 0,
            dropped_events: 0,
            fault_transitions: 0,
            peak_live_handles: 0,
            arena_bytes: 0,
            max_batch: 0,
            events_per_sec: self.events_per_sec,
            messages: 0,
            algorithm_messages: 0,
            control_messages: 0,
            acks: 0,
            time_overhead: 0.0,
            message_overhead: 0.0,
        }
    }
}

/// Renders the full artifact written to `BENCH_service.json`.
pub fn render_artifact(mode: &str, records: &[ServiceRecord]) -> String {
    Json::Obj(vec![
        ("schema", Json::Str("det-synchronizer-bench/v6".into())),
        ("suite", Json::Str("service".into())),
        ("mode", Json::Str(mode.into())),
        ("workload", Json::Str("batched single-source BFS via SessionPool".into())),
        ("scenarios", Json::Arr(records.iter().map(ServiceRecord::to_json).collect())),
    ])
    .render()
}

/// The fixed service tiers. The 4096-node tiers are the ones the ≥5× setup
/// amortization claim is asserted on; smoke stays CI-sized. The smoke tiers
/// are a strict subset of the full matrix (same ids, same batches), so
/// `exp_service --smoke --compare BENCH_service.json` always has matching
/// baseline rows — `schedule_ok` treats an empty match set as failure.
fn service_graphs(smoke: bool) -> Vec<(String, String, Graph)> {
    let tier = |family: &str, n: usize, graph: Graph| (family.to_string(), format!("{n}"), graph);
    let mut tiers = vec![
        tier("grid", 256, Graph::grid(16, 16)),
        tier("random-regular", 256, Graph::random_regular(256, 4, 256)),
    ];
    if !smoke {
        tiers.extend([
            tier("grid", 1024, Graph::grid(32, 32)),
            tier("torus", 1024, Graph::torus(32, 32)),
            tier("grid", 4096, Graph::grid(64, 64)),
            tier("random-regular", 4096, Graph::random_regular(4096, 4, 4096)),
        ]);
    }
    tiers
}

fn matches(filter: &Option<String>, id: &str) -> bool {
    filter.as_ref().is_none_or(|f| id.contains(f))
}

/// E11 — runs the service matrix and returns one record per `(tier, workers)`.
///
/// # Panics
///
/// Panics if any request fails, any pooled run differs from its standalone
/// session run (schedule identity is the service's headline guarantee), or a
/// 4096-node tier amortizes setup by less than 5×.
pub fn experiment_service(opts: &ServiceOptions) -> Vec<ServiceRecord> {
    // Smoke sweeps a subset of the full worker counts; the batch itself is
    // identical in both modes so a smoke scenario's `events` equals the
    // committed full-run row and `--compare --events-only` can gate on it.
    let worker_counts: &[usize] = if opts.smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    let batch_size: usize = 8;
    let warm_probes: u32 = 16;
    let mut records = Vec::new();

    for (family, size, graph) in service_graphs(opts.smoke) {
        let tier_id = format!("service/{family}/{size}");
        if worker_counts.iter().all(|w| !matches(&opts.filter, &format!("{tier_id}/w{w}"))) {
            continue;
        }

        // Ground truth: defines the pulse bound and the reference outputs.
        let direct = Session::on(&graph)
            .synchronizer(SyncKind::Direct)
            .run(|v| BfsAlgorithm::new(&graph, v, &[NodeId(0)]))
            .expect("ground truth run");
        let t = direct.metrics.time_to_quiescence.max(1.0) as u64;

        // Setup amortization: one cold build vs. the mean cache-hit lookup.
        let start = Instant::now();
        let cold_cfg = SynchronizerConfig::build(&graph, t);
        let setup_cold_ms = start.elapsed().as_secs_f64() * 1e3;
        let probe_cache = ds_sync::service::CoverCache::new();
        let params = SynchronizerParams { max_pulse: t };
        let first = probe_cache.get_or_build(&graph, params);
        assert_eq!(*first, *cold_cfg, "cache-hit config must equal the cold build");
        let start = Instant::now();
        for _ in 0..warm_probes {
            let hit = probe_cache.get_or_build(&graph, params);
            assert!(std::sync::Arc::ptr_eq(&hit, &first), "warm probes must hit");
        }
        let setup_warm_ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(warm_probes);
        let setup_speedup = setup_cold_ms / setup_warm_ms.max(1e-6);
        if graph.node_count() >= 4096 {
            assert!(
                setup_speedup >= 5.0,
                "{tier_id}: cache-hit setup must amortize ≥5× (cold {setup_cold_ms:.3} ms, \
                 warm {setup_warm_ms:.6} ms)"
            );
        }

        // The fixed batch: same topology, mixed delay adversaries, all DetAuto
        // with an explicit shared pulse bound (the cacheable configuration).
        let requests: Vec<ServiceRequest<'_>> = (0..batch_size)
            .map(|i| {
                ServiceRequest::on(&graph).delay(DelayModel::jitter(3 + i as u64)).pulse_bound(t)
            })
            .collect();

        // Standalone reference runs: what every pooled result must equal.
        let standalone: Vec<_> = requests
            .iter()
            .map(|req| {
                Session::on(&graph)
                    .delay(req.delay.clone())
                    .synchronizer(SyncKind::DetAuto)
                    .pulse_bound(t)
                    .run(|v| BfsAlgorithm::new(&graph, v, &[NodeId(0)]))
                    .expect("standalone run")
            })
            .collect();
        for run in &standalone {
            assert_eq!(run.outputs, direct.outputs, "{tier_id} diverged from ground truth");
        }

        for &workers in worker_counts {
            let scenario = format!("{tier_id}/w{workers}");
            if !matches(&opts.filter, &scenario) {
                continue;
            }
            let pool = SessionPool::new(workers);
            // Prewarm the pool's cache so the timed batch measures the
            // steady-state service, not one cover build.
            pool.cache().get_or_build(&graph, params);
            let start = Instant::now();
            let results = pool
                .run_batch::<BfsAlgorithm, _>(&requests, |_, v| {
                    BfsAlgorithm::new(&graph, v, &[NodeId(0)])
                })
                .into_iter()
                .map(|r| r.unwrap_or_else(|e| panic!("{scenario}: {e}")))
                .collect::<Vec<_>>();
            let wall = start.elapsed().as_secs_f64();
            let mut events = 0u64;
            for (i, (pooled, solo)) in results.iter().zip(&standalone).enumerate() {
                assert_eq!(pooled.outputs, solo.outputs, "{scenario} req {i}: outputs");
                assert_eq!(pooled.metrics, solo.metrics, "{scenario} req {i}: metrics");
                assert_eq!(pooled.ordering_violations, solo.ordering_violations, "{scenario}");
                assert_eq!(pooled.batched_ticks, solo.batched_ticks, "{scenario} req {i}");
                assert_eq!(pooled.dropped_events, solo.dropped_events, "{scenario} req {i}");
                assert_eq!(
                    pooled.peak_live_handles, solo.peak_live_handles,
                    "{scenario} req {i}: arena high-water mark"
                );
                assert_eq!(pooled.max_batch, solo.max_batch, "{scenario} req {i}");
                // `arena_bytes` is deliberately NOT compared: a recycled arena
                // may carry more capacity than a cold run ever allocated.
                events += pooled.metrics.events;
            }
            records.push(ServiceRecord {
                scenario,
                family: family.clone(),
                n: graph.node_count(),
                m: graph.edge_count(),
                workers,
                requests: requests.len(),
                pulse_bound: t,
                setup_cold_ms,
                setup_warm_ms,
                setup_speedup,
                wall_seconds: wall,
                requests_per_sec: requests.len() as f64 / wall.max(1e-9),
                events,
                events_per_sec: events as f64 / wall.max(1e-9),
                cache_hits: pool.cache().hits(),
                cache_misses: pool.cache().misses(),
                slab_checkouts: pool.bank().checkouts(),
                slab_reuses: pool.bank().reuses(),
            });
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_covers_every_tier_and_worker_count() {
        let records = experiment_service(&ServiceOptions { smoke: true, filter: None });
        // 2 tiers × 2 worker counts.
        assert_eq!(records.len(), 4);
        for r in &records {
            assert!(r.events > 0, "{}: no events", r.scenario);
            assert!(r.requests_per_sec > 0.0, "{}", r.scenario);
            // Every batch request after the prewarm hits the cache…
            assert_eq!(r.cache_hits, r.requests as u64, "{}", r.scenario);
            assert_eq!(r.cache_misses, 1, "{}", r.scenario);
            // …and the bank recycles once requests outnumber workers.
            assert_eq!(r.slab_checkouts, r.requests as u64, "{}", r.scenario);
            assert!(
                r.slab_reuses >= (r.requests - r.workers.min(r.requests)) as u64,
                "{}: {} reuses",
                r.scenario,
                r.slab_reuses
            );
        }
        // Schedule identity across worker counts: the same batch processes the
        // same events no matter how it is dispatched.
        assert_eq!(records[0].events, records[1].events);
    }

    #[test]
    fn filter_restricts_the_matrix() {
        let records =
            experiment_service(&ServiceOptions { smoke: true, filter: Some("grid/256/w1".into()) });
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].scenario, "service/grid/256/w1");
    }

    #[test]
    fn artifact_is_valid_schema_v6_service_suite() {
        let records =
            experiment_service(&ServiceOptions { smoke: true, filter: Some("grid/256/w4".into()) });
        let text = render_artifact("smoke", &records);
        assert!(text.contains("\"schema\": \"det-synchronizer-bench/v6\""));
        assert!(text.contains("\"suite\": \"service\""));
        assert!(text.contains("\"scenario\": \"service/grid/256/w4\""));
        assert!(text.contains("\"events_per_sec\""));
        assert!(text.contains("\"setup_ms\""));
        assert!(text.contains("\"setup_speedup\""));
        assert!(text.contains("\"requests_per_sec\""));
        assert!(text.contains("\"slab_reuses\""));
        // The conversion the --compare path uses must preserve the gated fields.
        let perf = records[0].to_perf_record();
        assert_eq!(perf.scenario, records[0].scenario);
        assert_eq!(perf.events, records[0].events);
        assert_eq!(perf.setup_ms, records[0].setup_warm_ms);
    }
}
