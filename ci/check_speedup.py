#!/usr/bin/env python3
"""Gate the sharded engine's multi-core speedup from two exp_perf artifacts.

Usage: check_speedup.py SERIAL.json SHARDED.json MIN_RATIO

Matches scenarios by id, compares total wall time over the matched set, and
exits non-zero if the sharded run is not at least MIN_RATIO times faster.
Event counts must agree exactly on every matched scenario first — a speedup
over a different schedule proves nothing. Only run this on a multi-core host
(the CI step guards on nproc): a single-core host legitimately shows ~1.0x
because the engine falls back to the coordinator thread.
"""

import json
import sys


def by_scenario(path):
    with open(path) as f:
        artifact = json.load(f)
    return {r["scenario"]: r for r in artifact["scenarios"]}


def main():
    serial_path, sharded_path, min_ratio = sys.argv[1], sys.argv[2], float(sys.argv[3])
    serial = by_scenario(serial_path)
    sharded = by_scenario(sharded_path)
    matched = sorted(set(serial) & set(sharded))
    if not matched:
        sys.exit("no matched scenarios between the two artifacts")

    serial_wall = sharded_wall = 0.0
    for scenario in matched:
        a, b = serial[scenario], sharded[scenario]
        if a["events"] != b["events"]:
            sys.exit(
                f"{scenario}: event counts diverged ({a['events']} serial vs "
                f"{b['events']} sharded) — the schedule changed, speedup is meaningless"
            )
        serial_wall += a["wall_seconds"]
        sharded_wall += b["wall_seconds"]

    ratio = serial_wall / sharded_wall if sharded_wall > 0 else float("inf")
    print(
        f"{len(matched)} scenario(s): serial {serial_wall:.3f}s, "
        f"sharded {sharded_wall:.3f}s, speedup {ratio:.2f}x (need >= {min_ratio}x)"
    )
    if ratio < min_ratio:
        sys.exit(f"speedup {ratio:.2f}x is below the {min_ratio}x gate")


if __name__ == "__main__":
    main()
